package encag

import "testing"

// Every paper algorithm, executed over real loopback TCP sockets: the
// gather must be byte-exact and an eavesdropper on the inter-node wires
// must see no plaintext block.
func TestAllAlgorithmsOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := Spec{Procs: 8, Nodes: 4}
	const m = 96
	for _, alg := range PaperAlgorithms() {
		res, err := RunOverTCP(spec, alg, m)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !res.SecurityOK {
			t.Errorf("%s: audit violations: %v", alg, res.Violations)
		}
		if !res.WireClean {
			t.Errorf("%s: plaintext visible on the TCP wire", alg)
		}
		if res.WireBytes == 0 {
			t.Errorf("%s: no inter-node wire traffic captured", alg)
		}
	}
}

// The plaintext counterpart is the positive control: the same TCP path
// with crypto disabled must expose plaintext to the wire sniffer.
func TestTCPPlaintextControl(t *testing.T) {
	res, err := RunOverTCP(Spec{Procs: 4, Nodes: 2}, "plain-c-ring", 96)
	if err != nil {
		t.Fatal(err)
	}
	if res.WireClean {
		t.Fatal("plaintext algorithm left no plaintext on the wire — sniffer broken")
	}
}

func TestTCPCyclicMapping(t *testing.T) {
	res, err := RunOverTCP(Spec{Procs: 8, Nodes: 4, Mapping: "cyclic"}, "hs2", 64)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SecurityOK || !res.WireClean {
		t.Fatal("hs2 over TCP with cyclic mapping failed the security checks")
	}
}
