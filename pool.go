package encag

import "encag/internal/seal"

// CryptoPool is a bounded AES-GCM worker pool that any number of
// sessions can share. The performance-modeling literature on encrypted
// MPI (Naser et al.) identifies crypto throughput as the shared
// bottleneck of a multi-tenant host, so the pool — not each session —
// owns the crypto budget: hand one pool to every OpenSession via
// WithCryptoPool and total GCM parallelism stays capped at the pool
// size no matter how many tenants run collectives concurrently.
//
// A saturated pool never blocks: segmented seal/open callers always
// participate in their own work, degrading to serial execution when no
// worker is free (the Saturated counter in PoolStats counts those
// events). Close drains the workers; sessions still using a closed pool
// keep working, serially. Sessions never close an injected pool — its
// owner (a tenant host, a test) does.
type CryptoPool = seal.Pool

// CryptoPoolStats is a CryptoPool's utilization view (see
// CryptoPool.Stats).
type CryptoPoolStats = seal.PoolStats

// NewCryptoPool creates a crypto worker pool with the given worker cap;
// size <= 0 selects GOMAXPROCS.
func NewCryptoPool(size int) *CryptoPool { return seal.NewPool(size) }

// WithCryptoPool points the session's sealer at an externally owned
// crypto worker pool instead of letting the session size its own
// (session-level only; overrides Spec.CryptoWorkers and survives
// Rekey). This is the multi-tenant wiring: a host opens one pool and
// shares it across every tenant session so one crypto budget is
// arbitrated process-wide.
func WithCryptoPool(p *CryptoPool) Option {
	return func(o *sessionOptions) { o.pool, o.poolSet = p, true }
}
