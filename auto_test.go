package encag

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"encag/internal/tune"
)

// With no tuning table, AlgAuto must reproduce the legacy threshold
// dispatcher exactly: O-RD2 below 1KB, C-RD below 16KB, HS2 from 16KB
// up — including at the exact byte boundaries — on both real engines.
func TestAutoDefaultThresholdBoundaries(t *testing.T) {
	cases := []struct {
		size int64
		want Alg
	}{
		{512, AlgORD2},
		{1023, AlgORD2}, // last byte below the small threshold
		{1024, AlgCRD},  // exactly 1KB crosses into the middle band
		{16383, AlgCRD}, // last byte below the large threshold
		{16384, AlgHS2}, // exactly 16KB selects the hierarchical scheme
		{64 << 10, AlgHS2},
	}
	for _, engine := range []Engine{EngineChan, EngineTCP} {
		s, err := OpenSession(context.Background(), Spec{Procs: 4, Nodes: 2}, WithEngine(engine))
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		for _, c := range cases {
			res, err := s.Run(context.Background(), AlgAuto, c.size)
			if err != nil {
				t.Fatalf("%s auto @%d: %v", engine, c.size, err)
			}
			if res.Algorithm != c.want {
				t.Errorf("%s auto @%d selected %s, want %s", engine, c.size, res.Algorithm, c.want)
			}
			if !res.SecurityOK {
				t.Errorf("%s auto @%d: security violations %v", engine, c.size, res.Violations)
			}
		}
		s.Close()
	}
}

// An AlgAuto run and an explicit run of the algorithm it resolves to
// must gather byte-identical results — auto is pure dispatch, never a
// behavioral variant.
func TestAutoMatchesExplicitRun(t *testing.T) {
	s, err := OpenSession(context.Background(), Spec{Procs: 8, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, size := range []int64{500, 4 << 10, 32 << 10} {
		auto, err := s.Run(context.Background(), AlgAuto, size)
		if err != nil {
			t.Fatalf("auto @%d: %v", size, err)
		}
		explicit, err := s.Run(context.Background(), auto.Algorithm, size)
		if err != nil {
			t.Fatalf("%s @%d: %v", auto.Algorithm, size, err)
		}
		if explicit.Algorithm != auto.Algorithm {
			t.Fatalf("explicit run of %s reports algorithm %s", auto.Algorithm, explicit.Algorithm)
		}
		for r := range auto.Gathered {
			for o := range auto.Gathered[r] {
				if !bytes.Equal(auto.Gathered[r][o], explicit.Gathered[r][o]) {
					t.Fatalf("auto(%s) @%d rank %d origin %d differs from explicit run",
						auto.Algorithm, size, r, o)
				}
			}
		}
	}
}

// syntheticTable builds a table whose argmin is a different algorithm in
// every listed bucket, for the given engine and shape.
func syntheticTable(engine string, p, n int, picks map[int]string) *tune.Table {
	tab := &tune.Table{Version: tune.Version}
	for bucket, best := range picks {
		lat := map[string]float64{
			"o-ring": 500, "o-rd2": 500, "c-rd": 500, "hs2": 500,
		}
		lat[best] = 100
		tab.Cells = append(tab.Cells, tune.Cell{
			Key:       tune.Key{Bucket: bucket, P: p, N: n, Engine: engine},
			Best:      best,
			LatencyNS: lat,
		})
	}
	return tab
}

// The acceptance sweep: with a table loaded, AlgAuto must select the
// table's argmin for every (size-bucket, p, N, engine) cell — checked
// across buckets, at the bucket's lower boundary and in its interior,
// on both real engines. Refinement is off so the table alone decides.
func TestAutoFollowsTableAcrossBuckets(t *testing.T) {
	// Rotate winners so a constant pick cannot pass by accident.
	picks := map[int]string{
		6:  "hs2",
		9:  "c-rd",
		10: "o-ring",
		13: "hs2",
		14: "o-rd2",
		16: "c-rd",
	}
	for _, engine := range []Engine{EngineChan, EngineTCP} {
		tab := syntheticTable(string(engine), 4, 2, picks)
		s, err := OpenSession(context.Background(), Spec{Procs: 4, Nodes: 2},
			WithEngine(engine), WithTuningTable(tab), WithTuningRefinement(false))
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		for bucket, want := range picks {
			for _, size := range []int64{tune.BucketMin(bucket), tune.BucketMin(bucket) + 7} {
				res, err := s.Run(context.Background(), AlgAuto, size)
				if err != nil {
					t.Fatalf("%s auto @%d: %v", engine, size, err)
				}
				if res.Algorithm != Alg(want) {
					t.Errorf("%s bucket %d @%d: auto selected %s, want table argmin %s",
						engine, bucket, size, res.Algorithm, want)
				}
			}
		}
		// A size in an uncovered bucket falls back to the nearest cell of
		// the same engine rather than the built-in thresholds.
		res, err := s.Run(context.Background(), AlgAuto, tune.BucketMin(17))
		if err != nil {
			t.Fatalf("%s auto nearest: %v", engine, err)
		}
		if res.Algorithm != "c-rd" { // nearest is bucket 16
			t.Errorf("%s bucket 17: auto selected %s, want nearest-cell argmin c-rd", engine, res.Algorithm)
		}
		counts := s.AutoSelected()
		var total int64
		for _, n := range counts {
			total += n
		}
		if want := int64(2*len(picks) + 1); total != want {
			t.Errorf("%s AutoSelected total = %d, want %d (%v)", engine, total, want, counts)
		}
		if snap := s.Snapshot(); len(snap.AutoSelected) == 0 {
			t.Errorf("%s snapshot missing AutoSelected", engine)
		}
		s.Close()
	}
}

// A table whose cheapest entry is not an encrypted algorithm must never
// downgrade AlgAuto below the encryption boundary: the unencrypted
// entry is skipped and the best encrypted candidate wins.
func TestAutoNeverSelectsUnencrypted(t *testing.T) {
	tab := &tune.Table{Version: tune.Version, Cells: []tune.Cell{{
		Key:  tune.Key{Bucket: 12, P: 4, N: 2, Engine: "chan"},
		Best: "plain-ring",
		LatencyNS: map[string]float64{
			"plain-ring": 10, // fastest, but unencrypted
			"mpi":        20, // also unencrypted
			"c-ring":     300,
			"hs2":        200,
		},
	}}}
	s, err := OpenSession(context.Background(), Spec{Procs: 4, Nodes: 2},
		WithTuningTable(tab), WithTuningRefinement(false))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run(context.Background(), AlgAuto, tune.BucketMin(12))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgHS2 {
		t.Fatalf("auto selected %s, want hs2 (cheapest encrypted candidate)", res.Algorithm)
	}
	if !res.SecurityOK {
		t.Fatalf("security violations %v", res.Violations)
	}
}

// AllgatherV dispatches AlgAuto on the operation's maximum block size —
// the quantity every rank knows — so mixed per-rank sizes cannot make
// ranks disagree. A small-average/large-max workload must select by the
// max, and the gathered bytes must round-trip.
func TestAutoAllgatherVDispatchesOnMax(t *testing.T) {
	for _, engine := range []Engine{EngineChan, EngineTCP} {
		s, err := OpenSession(context.Background(), Spec{Procs: 4, Nodes: 2}, WithEngine(engine))
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		cases := []struct {
			sizes []int
			want  Alg
		}{
			{[]int{100, 2000, 500, 800}, AlgCRD},  // max 2000 ∈ [1KB, 16KB)
			{[]int{100, 200, 30000, 400}, AlgHS2}, // max 30000 ≥ 16KB
			{[]int{100, 200, 300, 1023}, AlgORD2}, // max still below 1KB
		}
		for _, c := range cases {
			data := make([][]byte, len(c.sizes))
			for r, n := range c.sizes {
				data[r] = bytes.Repeat([]byte{byte(r + 1)}, n)
			}
			res, err := s.AllgatherV(context.Background(), AlgAuto, data)
			if err != nil {
				t.Fatalf("%s allgatherv %v: %v", engine, c.sizes, err)
			}
			if res.Algorithm != c.want {
				t.Errorf("%s allgatherv max=%d selected %s, want %s",
					engine, c.sizes[maxIdx(c.sizes)], res.Algorithm, c.want)
			}
			for r := range res.Gathered {
				for o, blk := range res.Gathered[r] {
					if !bytes.Equal(blk, data[o]) {
						t.Fatalf("%s allgatherv: rank %d origin %d corrupted", engine, r, o)
					}
				}
			}
		}
		s.Close()
	}
}

func maxIdx(sizes []int) int {
	best := 0
	for i, n := range sizes {
		if n > sizes[best] {
			best = i
		}
	}
	return best
}

// ENCAG_TUNING_TABLE wires a table into sessions that pass no option;
// an explicit WithTuningTable(nil) overrides the environment back to
// built-ins; a broken path fails OpenSession rather than being ignored.
func TestTuningTableEnv(t *testing.T) {
	tab := syntheticTable("chan", 4, 2, map[int]string{12: "o-ring"})
	data, err := tab.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tune.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Setenv(TuningTableEnv, path)

	s, err := OpenSession(context.Background(), Spec{Procs: 4, Nodes: 2},
		WithTuningRefinement(false))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background(), AlgAuto, tune.BucketMin(12))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgORing {
		t.Fatalf("env table: auto selected %s, want o-ring", res.Algorithm)
	}
	s.Close()

	// Explicit nil forces built-ins even with the env set: 4KB → c-rd.
	s2, err := OpenSession(context.Background(), Spec{Procs: 4, Nodes: 2},
		WithTuningTable(nil))
	if err != nil {
		t.Fatal(err)
	}
	res, err = s2.Run(context.Background(), AlgAuto, tune.BucketMin(12))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgCRD {
		t.Fatalf("WithTuningTable(nil): auto selected %s, want built-in c-rd", res.Algorithm)
	}
	s2.Close()

	t.Setenv(TuningTableEnv, filepath.Join(t.TempDir(), "missing.json"))
	if _, err := OpenSession(context.Background(), Spec{Procs: 4, Nodes: 2}); err == nil {
		t.Fatal("OpenSession ignored a broken ENCAG_TUNING_TABLE")
	}
}

// Online refinement observes successful real collectives (auto or
// explicit) and stays silent when disabled.
func TestTuningRefinementObservation(t *testing.T) {
	s, err := OpenSession(context.Background(), Spec{Procs: 4, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const size = 4 << 10
	for i := 0; i < 3; i++ {
		if _, err := s.Run(context.Background(), AlgHS2, size); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.tuner.Samples(s.tuneKey(size), "hs2"); got != 3 {
		t.Fatalf("refinement recorded %d samples, want 3", got)
	}

	off, err := OpenSession(context.Background(), Spec{Procs: 4, Nodes: 2},
		WithTuningRefinement(false))
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if _, err := off.Run(context.Background(), AlgHS2, size); err != nil {
		t.Fatal(err)
	}
	if got := off.tuner.Samples(off.tuneKey(size), "hs2"); got != 0 {
		t.Fatalf("refinement off but recorded %d samples", got)
	}
}

// Unknown algorithm names fail identically — a structured
// *UnknownAlgorithmError naming the input and listing valid names —
// across the blocking, nonblocking and simulated entry points.
func TestUnknownAlgorithmConsistency(t *testing.T) {
	real, err := OpenSession(context.Background(), Spec{Procs: 4, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer real.Close()
	sim, err := OpenSession(context.Background(), Spec{Procs: 4, Nodes: 2},
		WithEngine(EngineSim), WithProfile(Noleland()))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()

	checks := map[string]func() error{
		"Run": func() error {
			_, err := real.Run(context.Background(), "bogus", 64)
			return err
		},
		"Allgather": func() error {
			_, err := real.Allgather(context.Background(), "bogus", [][]byte{{1}, {2}, {3}, {4}})
			return err
		},
		"AllgatherV": func() error {
			_, err := real.AllgatherV(context.Background(), "bogus", [][]byte{{1}, {2}, {3}, {4}})
			return err
		},
		"Start": func() error {
			_, err := real.Start(context.Background(), "bogus", 64)
			return err
		},
		"Simulate": func() error {
			_, err := sim.Simulate(context.Background(), "bogus", 64)
			return err
		},
		"package Simulate": func() error {
			_, err := Simulate(Spec{Procs: 4, Nodes: 2}, Noleland(), "bogus", 64)
			return err
		},
	}
	for name, call := range checks {
		err := call()
		var ue *UnknownAlgorithmError
		if !errors.As(err, &ue) {
			t.Errorf("%s(bogus): error %v is not *UnknownAlgorithmError", name, err)
			continue
		}
		if ue.Name != "bogus" || len(ue.Valid) == 0 {
			t.Errorf("%s(bogus): malformed error %+v", name, ue)
		}
	}
}
