package encag_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"encag"
)

// Many sessions opening and closing concurrently — the multi-tenant
// host's steady state — must not interfere: each open either yields a
// working session or a clean error, never a shared-state corruption.
// Run under -race.
func TestConcurrentOpenCloseSessions(t *testing.T) {
	spec := encag.Spec{Procs: 4, Nodes: 2}
	pool := encag.NewCryptoPool(2)
	defer pool.Close()
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				s, err := encag.OpenSession(context.Background(), spec, encag.WithCryptoPool(pool))
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				if _, err := s.Run(context.Background(), encag.AlgORing, 512); err != nil {
					t.Errorf("run: %v", err)
				}
				if err := s.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			}
		}()
	}
	wg.Wait()
}

// Close is idempotent under concurrency: any number of racing Close
// calls all return cleanly, and operations afterwards fail with
// ErrSessionClosed rather than hanging or panicking.
func TestSessionDoubleCloseConcurrent(t *testing.T) {
	s, err := encag.OpenSession(context.Background(), encag.Spec{Procs: 4, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), encag.AlgORing, 256); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Close(); err != nil {
				t.Errorf("concurrent close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("re-close after quiesce: %v", err)
	}
	if _, err := s.Run(context.Background(), encag.AlgORing, 256); !errors.Is(err, encag.ErrSessionClosed) {
		t.Fatalf("run after close: %v, want ErrSessionClosed", err)
	}
}

// Close racing in-flight collectives: every Run either completes
// normally or fails with a structured ErrSessionClosed — and Close
// itself returns. This is the reap path of the multi-tenant host, where
// a session is torn down while sibling steps of the same tenant are
// mid-collective.
func TestSessionCloseRacesInflightRuns(t *testing.T) {
	for iter := 0; iter < 5; iter++ {
		s, err := encag.OpenSession(context.Background(), encag.Spec{Procs: 4, Nodes: 2})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < 6; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for j := 0; j < 10; j++ {
					if _, err := s.Run(context.Background(), encag.AlgORing, 1024); err != nil {
						if !errors.Is(err, encag.ErrSessionClosed) {
							t.Errorf("run during close: %v", err)
						}
						return
					}
				}
			}()
		}
		close(start)
		if err := s.Close(); err != nil {
			t.Fatalf("close with runs in flight: %v", err)
		}
		wg.Wait()
	}
}
