package encag_test

import (
	"fmt"

	"encag"
)

// ExampleAllgather runs a real encrypted all-gather: four ranks on two
// simulated nodes exchange secrets; inter-node traffic is AES-GCM
// sealed.
func ExampleAllgather() {
	spec := encag.Spec{Procs: 4, Nodes: 2}
	data := [][]byte{
		[]byte("alpha"), []byte("bravo"), []byte("charl"), []byte("delta"),
	}
	res, err := encag.Allgather(spec, "hs2", data)
	if err != nil {
		panic(err)
	}
	fmt.Println("rank 3 sees rank 0's block:", string(res.Gathered[3][0]))
	fmt.Println("security ok:", res.SecurityOK)
	// Output:
	// rank 3 sees rank 0's block: alpha
	// security ok: true
}

// ExampleSimulate prices an algorithm on the modelled Noleland cluster
// without running any bytes: here the paper's six cost metrics for HS2.
func ExampleSimulate() {
	spec := encag.Spec{Procs: 128, Nodes: 8}
	res, err := encag.Simulate(spec, encag.Noleland(), "hs2", 1024)
	if err != nil {
		panic(err)
	}
	fmt.Printf("rc=%d re=%d se=%d rd=%d sd=%d\n",
		res.Metrics.Rc, res.Metrics.Re, res.Metrics.Se, res.Metrics.Rd, res.Metrics.Sd)
	// Output:
	// rc=3 re=1 se=1024 rd=7 sd=7168
}

// ExampleLowerBounds evaluates the paper's Table I for the Noleland
// configuration.
func ExampleLowerBounds() {
	lb := encag.LowerBounds(128, 8, 1024)
	fmt.Printf("re>=%d se>=%d rd>=%d sd>=%d\n", lb.Re, lb.Se, lb.Rd, lb.Sd)
	// Output:
	// re>=1 se>=1024 rd>=1 sd>=7168
}

// ExamplePredict shows that HS2 meets the decrypted-bytes lower bound
// exactly.
func ExamplePredict() {
	pred, err := encag.Predict("hs2", 128, 8, 1024)
	if err != nil {
		panic(err)
	}
	lb := encag.LowerBounds(128, 8, 1024)
	fmt.Println("hs2 sd == bound:", pred.Sd == lb.Sd)
	// Output:
	// hs2 sd == bound: true
}
