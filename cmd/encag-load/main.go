// Command encag-load drives an encag-serve host the way a fleet of
// clients would: cohorts of tenants issuing mixed all-gather/all-reduce
// steps at a configurable arrival rate, over a size distribution, with
// optional fault seeds — then reports client-observed per-tenant
// latency quantiles next to the server's own admission/reap counters.
//
//	encag-serve -tenants 16 -addr 127.0.0.1:9191 &
//	encag-load -addr 127.0.0.1:9191 -tenants 16 -clients 64 \
//	    -rate 200 -mix 0.75 -sizes 1KB,16KB,64KB -duration 30s
//
// Closed-loop mode (-rate 0) lets each client issue its next step as
// soon as the previous one answers — the shape that saturates admission
// control and surfaces 429 backpressure rather than hangs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"time"

	"encag/internal/bench"
	"encag/internal/metrics"
)

type tenantTally struct {
	ok, rejected, failed int64
	lat                  *metrics.Histogram
}

type report struct {
	mu      sync.Mutex
	tenants map[string]*tenantTally
}

func (r *report) tally(id string) *tenantTally {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tenants[id]
	if t == nil {
		t = &tenantTally{lat: metrics.NewHistogram()}
		r.tenants[id] = t
	}
	return t
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9191", "encag-serve host address")
	tenants := flag.Int("tenants", 8, "tenant cohort size (steps spread over t0..tN-1)")
	clients := flag.Int("clients", 32, "concurrent simulated clients")
	rate := flag.Float64("rate", 0, "target arrivals/sec across all clients (0 = closed loop)")
	mix := flag.Float64("mix", 1.0, "fraction of steps that are all-gather (rest all-reduce)")
	sizesStr := flag.String("sizes", "4KB,16KB,64KB", "comma-separated step size distribution (uniform pick)")
	algName := flag.String("alg", "o-ring", "all-gather algorithm name sent to the host")
	faultRate := flag.Float64("faults", 0, "fraction of steps carrying a deterministic fault seed")
	seed := flag.Int64("seed", 1, "RNG seed (fault seeds and pick order derive from it)")
	duration := flag.Duration("duration", 10*time.Second, "how long to generate load")
	flag.Parse()

	sizes, err := parseSizes(*sizesStr)
	if err != nil {
		fatal(err)
	}
	base := "http://" + *addr

	// Arrival pacing: a shared ticket channel fed at -rate; closed loop
	// hands out tickets freely.
	var tickets chan struct{}
	if *rate > 0 {
		tickets = make(chan struct{})
		go func() {
			t := time.NewTicker(time.Duration(float64(time.Second) / *rate))
			defer t.Stop()
			for range t.C {
				select {
				case tickets <- struct{}{}:
				default: // all clients busy; shed the arrival
				}
			}
		}()
	}

	stopCh := make(chan os.Signal, 1)
	signal.Notify(stopCh, os.Interrupt)
	deadline := time.Now().Add(*duration)
	rep := &report{tenants: make(map[string]*tenantTally)}
	client := &http.Client{Timeout: 60 * time.Second}

	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		rng := rand.New(rand.NewSource(*seed + int64(c)*7919))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if tickets != nil {
					select {
					case <-tickets:
					case <-time.After(time.Until(deadline)):
						return
					}
				}
				id := fmt.Sprintf("t%d", rng.Intn(*tenants))
				q := url.Values{}
				q.Set("tenant", id)
				q.Set("size", fmt.Sprint(sizes[rng.Intn(len(sizes))]))
				if rng.Float64() < *mix {
					q.Set("op", "allgather")
					q.Set("alg", *algName)
				} else {
					q.Set("op", "allreduce")
				}
				if *faultRate > 0 && rng.Float64() < *faultRate {
					q.Set("faultseed", fmt.Sprint(1+rng.Int63n(1<<30)))
				}
				tl := rep.tally(id)
				start := time.Now()
				resp, err := client.Get(base + "/v1/step?" + q.Encode())
				if err != nil {
					tl.failed++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				tl.lat.Observe(time.Since(start).Nanoseconds())
				switch {
				case resp.StatusCode == http.StatusOK:
					tl.ok++
				case resp.StatusCode == http.StatusTooManyRequests:
					tl.rejected++
				default:
					tl.failed++
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-stopCh:
		deadline = time.Now() // drain: clients exit at their next check
		<-done
	}

	printReport(rep)
	scrapeHost(base)
}

// printReport renders the client-side view: per-tenant quantiles and
// outcome counts. Counters are read after every worker exited, so no
// lock is needed beyond the map's.
func printReport(rep *report) {
	ids := make([]string, 0, len(rep.tenants))
	for id := range rep.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var ok, rejected, failed int64
	fmt.Printf("%-8s %8s %8s %8s %10s %10s %10s\n",
		"tenant", "ok", "reject", "fail", "p50", "p95", "p99")
	for _, id := range ids {
		tl := rep.tenants[id]
		s := tl.lat.Snapshot()
		fmt.Printf("%-8s %8d %8d %8d %10v %10v %10v\n",
			id, tl.ok, tl.rejected, tl.failed,
			time.Duration(s.P50).Round(time.Microsecond),
			time.Duration(s.P95).Round(time.Microsecond),
			time.Duration(s.P99).Round(time.Microsecond))
		ok += tl.ok
		rejected += tl.rejected
		failed += tl.failed
	}
	fmt.Printf("total: ok=%d rejected=%d failed=%d\n", ok, rejected, failed)
}

// scrapeHost asks the server for its own rollup, so the client-side
// numbers sit next to admission/reap truth.
func scrapeHost(base string) {
	resp, err := http.Get(base + "/v1/tenants")
	if err != nil {
		fmt.Fprintf(os.Stderr, "host rollup unavailable: %v\n", err)
		return
	}
	defer resp.Body.Close()
	var snap struct {
		Resident int              `json:"resident"`
		Known    int              `json:"known"`
		Admitted int64            `json:"admitted"`
		Rejected map[string]int64 `json:"rejected"`
		Reaps    map[string]int64 `json:"reaps"`
		Rekeys   int64            `json:"rekeys"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		fmt.Fprintf(os.Stderr, "host rollup unreadable: %v\n", err)
		return
	}
	fmt.Printf("host: known=%d resident=%d admitted=%d rejected=%v reaps=%v rekeys=%d\n",
		snap.Known, snap.Resident, snap.Admitted, snap.Rejected, snap.Reaps, snap.Rekeys)
}

func parseSizes(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		n, err := bench.ParseSize(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -sizes")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
