// Command encag-mon runs a live encrypted all-gather workload on one
// persistent Session with the debug HTTP server enabled, so the
// session's metrics can be watched while collectives are actually in
// flight:
//
//	encag-mon -engine tcp -p 8 -nodes 2 -window 4 -addr 127.0.0.1:9090
//	curl http://127.0.0.1:9090/metrics       # Prometheus text format
//	curl http://127.0.0.1:9090/debug/vars    # expvar-style JSON
//	go tool pprof http://127.0.0.1:9090/debug/pprof/profile?seconds=5
//
// The workload issues nonblocking collectives through Session.Start as
// fast as the in-flight window admits them, for -duration (0 = until
// interrupted). On exit it drains the window and prints a snapshot
// summary of what the session observed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"encag"
	"encag/internal/bench"
)

func main() {
	p := flag.Int("p", 8, "number of processes")
	nodes := flag.Int("nodes", 2, "number of nodes")
	mapping := flag.String("mapping", "block", "process mapping: block or cyclic")
	engineStr := flag.String("engine", "tcp", "execution engine: chan or tcp")
	algName := flag.String("alg", "hs2", "algorithm name (see encag-explore); \"auto\" consults the tuning table")
	tablePath := flag.String("table", "", "tuning table JSON for alg=auto (default: $ENCAG_TUNING_TABLE, else built-in thresholds)")
	refine := flag.Bool("refine", true, "let alg=auto fold this session's own latencies back into its estimates")
	sizeStr := flag.String("size", "64KB", "message size")
	window := flag.Int("window", 4, "nonblocking in-flight window")
	pipeline := flag.Bool("pipeline", false, "stream sealed segments onto the wire inside each collective")
	segWindow := flag.Int("segwindow", 0, "in-flight segment window per stream (0 = default; implies -pipeline)")
	interval := flag.Duration("interval", 0, "pause between Start calls (0 = rely on window backpressure)")
	duration := flag.Duration("duration", 0, "how long to run (0 = until SIGINT)")
	addr := flag.String("addr", "", "debug server listen address (empty = ephemeral loopback port)")
	flag.Parse()

	size, err := bench.ParseSize(*sizeStr)
	if err != nil {
		fatal(err)
	}
	alg, err := encag.ParseAlg(*algName)
	if err != nil {
		fatal(err)
	}
	engine := encag.Engine(*engineStr)
	if engine != encag.EngineChan && engine != encag.EngineTCP {
		fatal(fmt.Errorf("unknown -engine %q (want chan or tcp)", *engineStr))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	spec := encag.Spec{Procs: *p, Nodes: *nodes, Mapping: *mapping}
	opts := []encag.Option{
		encag.WithEngine(engine),
		encag.WithMaxInFlight(*window),
		encag.WithDebugServer(*addr),
	}
	if *pipeline || *segWindow > 0 {
		*pipeline = true
		opts = append(opts, encag.WithPipelining(true))
		if *segWindow > 0 {
			opts = append(opts, encag.WithSegmentWindow(*segWindow))
		}
	}
	if *tablePath != "" {
		table, err := encag.LoadTuningTable(*tablePath)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, encag.WithTuningTable(table))
	}
	if !*refine {
		opts = append(opts, encag.WithTuningRefinement(false))
	}
	sess, err := encag.OpenSession(context.Background(), spec, opts...)
	if err != nil {
		fatal(err)
	}
	defer sess.Close()
	fmt.Printf("encag-mon: %s %s p=%d nodes=%d window=%d pipeline=%v\n",
		engine, alg, *p, *nodes, *window, *pipeline)
	fmt.Printf("metrics at http://%s/metrics (also /debug/vars, /debug/pprof/)\n", sess.DebugAddr())

	// Issue collectives until the context ends; the in-flight window is
	// the natural throttle when no interval is set. Start blocks on a
	// full window, so ctx doubles as the admission bound.
	var started int64
	for ctx.Err() == nil {
		h, err := sess.Start(ctx, alg, size)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			fatal(err)
		}
		started++
		go func() {
			if _, err := h.Wait(); err != nil && ctx.Err() == nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
		if *interval > 0 {
			select {
			case <-time.After(*interval):
			case <-ctx.Done():
			}
		}
	}
	if err := sess.WaitAll(context.Background()); err != nil {
		// Operations cancelled by the shutdown are the expected way the
		// run ends, not a failure worth reporting.
		var re *encag.RankError
		if !errors.As(err, &re) || re.Op != "cancel" {
			fmt.Fprintln(os.Stderr, err)
		}
	}

	snap := sess.Snapshot()
	fmt.Printf("\nran %d collectives (%d completed, %d failed, %d cancelled)\n",
		started, snap.OpsCompleted, snap.OpsFailed, snap.OpsCancelled)
	fmt.Printf("op latency: p50=%v p95=%v p99=%v\n",
		time.Duration(snap.OpLatency.P50), time.Duration(snap.OpLatency.P95), time.Duration(snap.OpLatency.P99))
	fmt.Printf("window waits=%d  frames sent=%d recv=%d  bytes sent=%d\n",
		snap.WindowWaits, snap.FramesSent, snap.FramesRecv, snap.BytesSent)
	fmt.Printf("seal: segments sealed=%d opened=%d  pool saturated=%d\n",
		snap.SegmentsSealed, snap.SegmentsOpened, snap.PoolSaturated)
	if *pipeline {
		fmt.Printf("pipeline: msgs=%d streams=%d inline chunks=%d segments sent=%d recv=%d inline opens=%d window=%d\n",
			snap.PipelineMsgs, snap.PipelineStreams, snap.PipelineInlineChunks,
			snap.PipelineSegmentsSent, snap.PipelineSegmentsRecv,
			snap.PipelineInlineOpens, snap.PipelineWindow)
	}
	if engine == encag.EngineTCP {
		fmt.Printf("wire: %d bytes  reconnects=%d resends=%d dedup drops=%d\n",
			snap.WireBytes, snap.Reconnects, snap.Resends, snap.DedupDrops)
	}
	if len(snap.AutoSelected) > 0 {
		fmt.Printf("auto selected:")
		for name, n := range snap.AutoSelected {
			fmt.Printf(" %s=%d", name, n)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
