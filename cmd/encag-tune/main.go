// Command encag-tune measures the algorithm crossovers on this host and
// emits the tuning table that drives alg=auto.
//
// Sweep mode (the default) runs every candidate algorithm over a grid of
// engines × cluster shapes × message sizes on real sessions, best-of-k,
// and writes the versioned JSON table plus a human-readable crossover
// report per configuration:
//
//	encag-tune -o tune.json                          # full default grid
//	encag-tune -quick -o tune.json                   # reduced smoke grid
//	encag-tune -engines tcp -p 8 -nodes 2 \
//	    -sizes 1KB,16KB,256KB -k 5 -o tune.json
//
// Lookup mode answers "what would alg=auto pick here?" from an existing
// table — one algorithm name on stdout, for scripting:
//
//	encag-tune -lookup -table tune.json -engines tcp -p 4 -nodes 2 -size 64KB
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"encag"
	"encag/internal/bench"
	"encag/internal/encrypted"
	"encag/internal/tune"
)

func main() {
	lookup := flag.Bool("lookup", false, "lookup mode: print the alg=auto pick for one configuration and exit")
	tablePath := flag.String("table", "", "existing tuning table to consult (lookup mode)")
	out := flag.String("o", "tune.json", "output path for the tuning table (sweep mode)")
	enginesStr := flag.String("engines", "chan,tcp", "comma-separated engines to sweep (chan, tcp)")
	pStr := flag.String("p", "4,8", "comma-separated process counts, index-aligned with -nodes")
	nodesStr := flag.String("nodes", "2,2", "comma-separated node counts, index-aligned with -p")
	sizesStr := flag.String("sizes", "256B,1KB,4KB,16KB,64KB,256KB", "comma-separated message sizes")
	algsStr := flag.String("algs", "", "comma-separated candidate algorithms (default: the paper's eight)")
	k := flag.Int("k", 3, "best-of-k runs per (cell, algorithm)")
	pipeline := flag.String("pipeline", "off", "pipelining modes to sweep: off, on or both")
	quick := flag.Bool("quick", false, "reduced grid for a fast smoke run (chan+tcp, p=4 N=2, three sizes, k=1)")
	note := flag.String("note", "", "free-form note recorded in the table")
	sizeStr := flag.String("size", "64KB", "message size (lookup mode)")
	flag.Parse()

	if *lookup {
		runLookup(*tablePath, *enginesStr, *pStr, *nodesStr, *sizeStr, *pipeline)
		return
	}

	grid, err := buildGrid(*enginesStr, *pStr, *nodesStr, *sizesStr, *algsStr, *pipeline, *k, *quick)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	table, reports, err := bench.TuneSweep(grid)
	if err != nil {
		fatal(err)
	}
	table.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	table.Host, _ = os.Hostname()
	table.Note = *note

	for _, rep := range reports {
		if err := rep.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	data, err := table.Encode()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d cells to %s (%.1fs sweep)\n", len(table.Cells), *out, time.Since(start).Seconds())
}

// buildGrid translates the flag strings into a validated TuneGrid.
func buildGrid(enginesStr, pStr, nodesStr, sizesStr, algsStr, pipeline string, k int, quick bool) (bench.TuneGrid, error) {
	var g bench.TuneGrid
	if quick {
		g = bench.TuneGrid{
			Engines:    []encag.Engine{encag.EngineChan, encag.EngineTCP},
			Pipelining: []bool{false},
			Procs:      []int{4},
			Nodes:      []int{2},
			Sizes:      []int64{256, 16 << 10, 128 << 10},
			BestOf:     1,
		}
		return g, nil
	}
	for _, e := range splitList(enginesStr) {
		g.Engines = append(g.Engines, encag.Engine(e))
	}
	procs, err := parseInts(pStr)
	if err != nil {
		return g, fmt.Errorf("-p: %w", err)
	}
	nodes, err := parseInts(nodesStr)
	if err != nil {
		return g, fmt.Errorf("-nodes: %w", err)
	}
	g.Procs, g.Nodes = procs, nodes
	for _, s := range splitList(sizesStr) {
		n, err := bench.ParseSize(s)
		if err != nil {
			return g, err
		}
		g.Sizes = append(g.Sizes, n)
	}
	for _, a := range splitList(algsStr) {
		alg, err := encag.ParseAlg(a)
		if err != nil {
			return g, err
		}
		g.Algs = append(g.Algs, alg)
	}
	switch pipeline {
	case "off", "":
		g.Pipelining = []bool{false}
	case "on":
		g.Pipelining = []bool{true}
	case "both":
		g.Pipelining = []bool{false, true}
	default:
		return g, fmt.Errorf("-pipeline: want off, on or both, got %q", pipeline)
	}
	g.BestOf = k
	return g, nil
}

// runLookup prints the algorithm alg=auto would pick for one
// configuration under the given table — exactly the session's policy:
// table argmin (restricted to encrypted algorithms), falling back to the
// built-in thresholds when the table has no matching cell.
func runLookup(tablePath, enginesStr, pStr, nodesStr, sizeStr, pipeline string) {
	var table *tune.Table
	if tablePath != "" {
		var err error
		if table, err = tune.Load(tablePath); err != nil {
			fatal(err)
		}
	}
	engines := splitList(enginesStr)
	procs, err := parseInts(pStr)
	if err != nil {
		fatal(fmt.Errorf("-p: %w", err))
	}
	nodes, err := parseInts(nodesStr)
	if err != nil {
		fatal(fmt.Errorf("-nodes: %w", err))
	}
	if len(engines) != 1 || len(procs) != 1 || len(nodes) != 1 {
		fatal(fmt.Errorf("lookup mode takes exactly one engine, -p and -nodes value"))
	}
	size, err := bench.ParseSize(sizeStr)
	if err != nil {
		fatal(err)
	}
	if pipeline != "off" && pipeline != "on" && pipeline != "" {
		fatal(fmt.Errorf("-pipeline: lookup mode wants off or on, got %q", pipeline))
	}
	// Mirror the session's auto-candidate filter: only encrypted
	// algorithms may be selected, whatever the table claims.
	valid := func(name string) bool {
		if name == "auto" {
			return false
		}
		_, err := encrypted.Get(name)
		return err == nil
	}
	k := tune.Key{
		Bucket:    tune.BucketOf(size),
		P:         procs[0],
		N:         nodes[0],
		Engine:    engines[0],
		Pipelined: pipeline == "on",
	}
	fmt.Println(tune.NewTuner(table, valid).Pick(k, size))
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
