// Command encag-osu is the in-memory analogue of the OSU_Allgather
// micro-benchmark the paper measures with: it runs the real execution
// engine (goroutines, channel transport, real AES-GCM) repeatedly for a
// range of message sizes and reports average / min / max wall-clock
// latency per all-gather, plus the six cost metrics.
//
// Wall times here measure this host's goroutine scheduler and AES-NI
// throughput, not an InfiniBand fabric — use encag-bench for the
// calibrated cluster model. The value of this tool is comparing the
// *relative* cryptographic cost of the algorithms on real silicon.
//
// Example:
//
//	encag-osu -p 32 -nodes 4 -algs naive,hs2 -sizes 1KB,64KB -iters 20
//	encag-osu -session -engine tcp -iters 50   # persistent-session mode
//	encag-osu -session -engine tcp -window 4   # nonblocking: pipelined Start
//
// With -session, all iterations of all configurations run over ONE
// persistent encag.Session (mesh dialed once); without it, every
// iteration is an independent one-shot run — the difference is the
// setup amortization the session runtime provides. With -window n (>1,
// requires -session), the timed iterations are issued through the
// nonblocking Session.Start under an in-flight window of n: the avg
// column then reports batch wall clock per collective (pipelined
// throughput), while min/max/stddev remain per-operation and overlap.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"encag"
	"encag/internal/bench"
)

// stddev returns the sample standard deviation in the samples' unit.
func stddev(samples []float64) float64 {
	if len(samples) < 2 {
		return 0
	}
	var mean float64
	for _, v := range samples {
		mean += v
	}
	mean /= float64(len(samples))
	var ss float64
	for _, v := range samples {
		ss += (v - mean) * (v - mean)
	}
	return math.Sqrt(ss / float64(len(samples)-1))
}

func main() {
	p := flag.Int("p", 32, "number of processes")
	nodes := flag.Int("nodes", 4, "number of nodes")
	mapping := flag.String("mapping", "block", "block or cyclic")
	algsStr := flag.String("algs", "naive,o-rd,c-ring,hs1,hs2", "comma-separated algorithms")
	sizesStr := flag.String("sizes", "1KB,16KB,256KB", "comma-separated sizes")
	iters := flag.Int("iters", 10, "iterations per configuration")
	warmup := flag.Int("warmup", 2, "warm-up iterations (not timed)")
	asCSV := flag.Bool("csv", false, "emit CSV")
	cryptoWorkers := flag.Int("crypto-workers", 0, "AES-GCM worker pool size (0 = shared GOMAXPROCS pool)")
	segmentStr := flag.String("segment-size", "", "AES-GCM segmentation split size, e.g. 64KB (empty = default)")
	useSession := flag.Bool("session", false, "run all iterations over one persistent Session instead of per-call runs")
	window := flag.Int("window", 1, "pipeline iterations through Session.Start with this in-flight window (>1 requires -session)")
	engineStr := flag.String("engine", "chan", "execution engine: chan or tcp")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if *window > 1 && !*useSession {
		fmt.Fprintln(os.Stderr, "-window requires -session (nonblocking Start multiplexes one session's mesh)")
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize final allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	var segSize int64
	if *segmentStr != "" {
		v, err := bench.ParseSize(*segmentStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		segSize = v
	}
	spec := encag.Spec{Procs: *p, Nodes: *nodes, Mapping: *mapping,
		CryptoWorkers: *cryptoWorkers, SegmentSize: segSize}
	var sizes []int64
	for _, s := range strings.Split(*sizesStr, ",") {
		v, err := bench.ParseSize(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sizes = append(sizes, v)
	}
	var algs []encag.Alg
	for _, name := range strings.Split(*algsStr, ",") {
		alg, err := encag.ParseAlg(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		algs = append(algs, alg)
	}

	engine := encag.Engine(*engineStr)
	if engine != encag.EngineChan && engine != encag.EngineTCP {
		fmt.Fprintf(os.Stderr, "unknown -engine %q (want chan or tcp)\n", *engineStr)
		os.Exit(2)
	}
	var sess *encag.Session
	if *useSession {
		s, err := encag.OpenSession(context.Background(), spec,
			encag.WithEngine(engine), encag.WithMaxInFlight(*window))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer s.Close()
		sess = s
	}
	// runOnce executes one collective in the selected mode: over the
	// shared persistent session, or as an independent one-shot run.
	runOnce := func(alg encag.Alg, m int64) (*encag.RunResult, error) {
		if sess != nil {
			return sess.Run(context.Background(), alg, m)
		}
		if engine == encag.EngineTCP {
			res, err := encag.RunOverTCP(spec, alg, m)
			if err != nil {
				return nil, err
			}
			return &res.RunResult, nil
		}
		return encag.Run(spec, alg, m)
	}

	if *asCSV {
		fmt.Println("alg,size,avg_us,min_us,max_us,stddev_us,rd,sd")
	} else {
		fmt.Printf("# encag-osu  p=%d nodes=%d mapping=%s iters=%d engine=%s session=%v (wall clock, real AES-GCM)\n",
			*p, *nodes, *mapping, *iters, engine, *useSession)
		fmt.Printf("%-8s %-8s %12s %12s %12s %12s %8s %12s\n",
			"alg", "size", "avg", "min", "max", "stddev", "rd", "sd")
	}
	for _, alg := range algs {
		for _, m := range sizes {
			var total, minD, maxD time.Duration
			var samples []float64
			var metrics encag.Metrics
			ok := true
			// collect folds one timed result into the running stats.
			collect := func(res *encag.RunResult) bool {
				if !res.SecurityOK {
					fmt.Fprintf(os.Stderr, "%s @%s: security violation\n", alg, bench.SizeName(m))
					return false
				}
				d := res.Elapsed
				total += d
				samples = append(samples, d.Seconds()*1e6)
				if minD == 0 || d < minD {
					minD = d
				}
				if d > maxD {
					maxD = d
				}
				metrics = res.Metrics
				return true
			}
			if *window > 1 {
				// Nonblocking mode: warm up serially, then pipeline the
				// timed iterations through Start. Per-op elapsed times
				// overlap, so the avg column reports batch wall clock per
				// collective — the OSU-style pipelined throughput figure.
				for i := 0; i < *warmup; i++ {
					if _, err := runOnce(alg, m); err != nil {
						fmt.Fprintf(os.Stderr, "%s @%s: %v\n", alg, bench.SizeName(m), err)
						ok = false
						break
					}
				}
				batch := time.Now()
				var handles []*encag.Handle
				for i := 0; ok && i < *iters; i++ {
					h, err := sess.Start(context.Background(), alg, m)
					if err != nil {
						fmt.Fprintf(os.Stderr, "%s @%s: %v\n", alg, bench.SizeName(m), err)
						ok = false
						break
					}
					handles = append(handles, h)
				}
				for _, h := range handles {
					res, err := h.Wait()
					if err != nil {
						fmt.Fprintf(os.Stderr, "%s @%s: %v\n", alg, bench.SizeName(m), err)
						ok = false
						continue
					}
					if !collect(res) {
						ok = false
					}
				}
				total = time.Since(batch)
			} else {
				for i := 0; i < *warmup+*iters; i++ {
					res, err := runOnce(alg, m)
					if err != nil {
						fmt.Fprintf(os.Stderr, "%s @%s: %v\n", alg, bench.SizeName(m), err)
						ok = false
						break
					}
					if i < *warmup {
						continue
					}
					if !collect(res) {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			avg := total / time.Duration(*iters)
			sd := stddev(samples)
			if *asCSV {
				fmt.Printf("%s,%s,%.1f,%.1f,%.1f,%.1f,%d,%d\n",
					alg, bench.SizeName(m), avg.Seconds()*1e6, minD.Seconds()*1e6,
					maxD.Seconds()*1e6, sd, metrics.Rd, metrics.Sd)
			} else {
				fmt.Printf("%-8s %-8s %12v %12v %12v %11.1fu %8d %12d\n",
					alg, bench.SizeName(m),
					avg.Round(time.Microsecond), minD.Round(time.Microsecond), maxD.Round(time.Microsecond),
					sd, metrics.Rd, metrics.Sd)
			}
		}
	}
}
