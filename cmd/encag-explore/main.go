// Command encag-explore answers "which encrypted all-gather should my
// cluster use?": it simulates every algorithm for a given cluster shape,
// mapping, machine profile and message size, prints the ranking with the
// six cost metrics, and shows how far the winner sits from the paper's
// lower bounds.
//
// Example:
//
//	encag-explore -p 256 -nodes 16 -size 64KB -profile noleland -mapping cyclic
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"encag"
	"encag/internal/bench"
)

func main() {
	p := flag.Int("p", 128, "number of processes")
	nodes := flag.Int("nodes", 8, "number of nodes")
	mapping := flag.String("mapping", "block", "process mapping: block or cyclic")
	sizeStr := flag.String("size", "16KB", "message size per rank (e.g. 64, 4KB, 2MB)")
	profName := flag.String("profile", "noleland", "machine profile: noleland or bridges2")
	flag.Parse()

	size, err := bench.ParseSize(*sizeStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prof, err := encag.ProfileByName(*profName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec := encag.Spec{Procs: *p, Nodes: *nodes, Mapping: *mapping}

	type row struct {
		name encag.Alg
		res  encag.SimResult
	}
	var rows []row
	for _, alg := range append([]encag.Alg{encag.AlgMPI}, encag.PaperAlgorithms()...) {
		res, err := encag.Simulate(spec, prof, alg, size)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", alg, err)
			os.Exit(1)
		}
		rows = append(rows, row{alg, res})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].res.Latency < rows[j].res.Latency })

	fmt.Printf("Cluster: p=%d nodes=%d l=%d mapping=%s profile=%s msg=%s\n\n",
		*p, *nodes, *p / *nodes, *mapping, prof.Name, bench.SizeName(size))
	fmt.Printf("%-8s %12s %6s %6s %12s %6s %12s\n", "scheme", "latency", "rc", "re", "se", "rd", "sd")
	for _, r := range rows {
		fmt.Printf("%-8s %12s %6d %6d %12d %6d %12d\n",
			r.name, r.res.Latency.Round(10*time.Nanosecond),
			r.res.Metrics.Rc, r.res.Metrics.Re, r.res.Metrics.Se,
			r.res.Metrics.Rd, r.res.Metrics.Sd)
	}

	lb := encag.LowerBounds(*p, *nodes, size)
	fmt.Printf("\nLower bounds (Table I): rc>=%d sc>=%d re>=%d se>=%d rd>=%d sd>=%d\n",
		lb.Rc, lb.Sc, lb.Re, lb.Se, lb.Rd, lb.Sd)

	best := rows[0]
	if best.name == "mpi" && len(rows) > 1 {
		enc := rows[1]
		fmt.Printf("\nRecommendation: %s — fastest encrypted scheme, %.1f%% over unencrypted MPI\n",
			enc.name, 100*(enc.res.Latency.Seconds()-best.res.Latency.Seconds())/best.res.Latency.Seconds())
	} else {
		fmt.Printf("\nRecommendation: %s — beats unencrypted MPI here\n", best.name)
	}
}
