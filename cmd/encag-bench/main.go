// Command encag-bench regenerates the tables and figures of "Efficient
// Algorithms for Encrypted All-gather Operation" (IPDPS 2021) from the
// calibrated cluster model.
//
// Usage:
//
//	encag-bench                  # run every experiment
//	encag-bench -exp table3      # one experiment (fig1, table1..6, fig5..8, ablation)
//	encag-bench -exp fig7 -csv   # emit CSV instead of aligned text
//	encag-bench -exp fig5 -jsonl # emit JSONL run summaries (one object per row)
//	encag-bench -quick           # trimmed sizes for a fast smoke run
//	encag-bench -list            # list experiment IDs
//	encag-bench -session -iters 20 -jsonl   # session-amortization study only
//	encag-bench -overlap -iters 12 -jsonl   # nonblocking-scheduler overlap study only
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"encag/internal/bench"
)

// startCPUProfile begins CPU profiling into path and returns the stop
// function; empty path is a no-op.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// writeMemProfile dumps the post-GC heap profile to path; empty path is
// a no-op.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	runtime.GC() // materialize final allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func main() {
	exp := flag.String("exp", "", "experiment ID to run (default: all)")
	asCSV := flag.Bool("csv", false, "emit CSV instead of text tables")
	asJSONL := flag.Bool("jsonl", false, "emit JSONL structured summaries instead of text tables")
	asPlot := flag.Bool("plot", false, "also render latency-vs-size tables as ASCII charts")
	quick := flag.Bool("quick", false, "trim large sizes for a fast run")
	outDir := flag.String("out", "", "also write each table as CSV into this directory")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	session := flag.Bool("session", false, "shortcut for -exp session (per-call dial vs session reuse)")
	overlap := flag.Bool("overlap", false, "shortcut for -exp overlap (serialized vs multiplexed in-flight collectives)")
	iters := flag.Int("iters", 0, "iteration count for host-measuring experiments (0 = default)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	stopCPU := startCPUProfile(*cpuProfile)
	defer stopCPU()
	defer writeMemProfile(*memProfile)
	if *session {
		*exp = "session"
	}
	if *overlap {
		*exp = "overlap"
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	experiments := bench.All()
	if *exp != "" {
		e, err := bench.Get(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		experiments = []bench.Experiment{e}
	}

	opts := bench.Options{Quick: *quick, Iters: *iters}
	for _, e := range experiments {
		start := time.Now()
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *outDir != "" {
			if err := bench.WriteCSVDir(tables, *outDir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		for _, t := range tables {
			if *asJSONL {
				if err := t.JSONL(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			} else if *asCSV {
				if err := t.CSV(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			} else {
				if err := t.Render(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if *asPlot && bench.Plottable(t) {
					chart, err := bench.PlotTable(t)
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					fmt.Println(chart)
				}
			}
		}
		if !*asCSV && !*asJSONL {
			fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}
