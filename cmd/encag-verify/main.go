// Command encag-verify runs the full correctness and security sweep on
// the real execution engine: every encrypted algorithm, across a matrix
// of process counts, node counts, mappings and message sizes, with real
// AES-GCM over real payloads. It checks that
//
//   - every rank ends with every rank's plaintext block, byte-exact;
//   - no plaintext ever crosses a node boundary (transport audit);
//   - no GCM nonce is ever reused.
//
// With -faults it additionally runs the chaos sweep: every algorithm
// under deterministic fault-injection plans (connection drops, stalls,
// partial writes, frame corruption), checking the fault-tolerance
// contract — transient plans must complete with byte-exact buffers, and
// any plan must end in either verified completion or a single
// structured RankError, never a hang or a panic.
//
// Exit status 0 means all checks passed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"encag"
)

func main() {
	sizeList := flag.String("sizes", "1,17,256,4096", "comma-separated message sizes in bytes")
	verbose := flag.Bool("v", false, "print every case")
	overTCP := flag.Bool("tcp", false, "also run each algorithm over loopback TCP with wire sniffing")
	cryptoWorkers := flag.Int("crypto-workers", 0, "AES-GCM worker pool size (0 = shared GOMAXPROCS pool)")
	segSize := flag.Int64("segment-size", 0, "AES-GCM segmentation split size in bytes (0 = 64 KiB default); small values force multi-segment seals")
	faults := flag.Bool("faults", false, "also run the fault-injection chaos sweep (see -fault-seeds)")
	faultSeeds := flag.Int("fault-seeds", 3, "deterministic seeds per plan family in the chaos sweep")
	flag.Parse()

	var sizes []int64
	for _, s := range splitComma(*sizeList) {
		var v int64
		if _, err := fmt.Sscan(s, &v); err != nil || v < 0 {
			fmt.Fprintf(os.Stderr, "bad size %q\n", s)
			os.Exit(2)
		}
		sizes = append(sizes, v)
	}

	specs := []encag.Spec{
		{Procs: 4, Nodes: 2},
		{Procs: 8, Nodes: 2},
		{Procs: 8, Nodes: 4, Mapping: "cyclic"},
		{Procs: 8, Nodes: 8},
		{Procs: 12, Nodes: 3},
		{Procs: 12, Nodes: 3, Mapping: "cyclic"},
		{Procs: 16, Nodes: 4},
		{Procs: 16, Nodes: 4, Mapping: "cyclic"},
		{Procs: 21, Nodes: 7},
		{Procs: 32, Nodes: 8},
		{Procs: 12, Nodes: 4, Mapping: "custom",
			Custom: []int{2, 0, 3, 1, 1, 3, 0, 2, 3, 2, 1, 0}},
	}

	for i := range specs {
		specs[i].CryptoWorkers = *cryptoWorkers
		specs[i].SegmentSize = *segSize
	}

	start := time.Now()
	cases, failures := 0, 0
	for _, spec := range specs {
		for _, alg := range encag.PaperAlgorithms() {
			for _, m := range sizes {
				cases++
				res, err := encag.Run(spec, alg, m)
				status := "ok"
				switch {
				case err != nil:
					status = "FAIL: " + err.Error()
				case !res.SecurityOK:
					status = fmt.Sprintf("INSECURE: %v", res.Violations)
				}
				if status != "ok" {
					failures++
					fmt.Printf("%-8s p=%-4d N=%-2d %-7s m=%-8d %s\n",
						alg, spec.Procs, spec.Nodes, mappingName(spec), m, status)
				} else if *verbose {
					fmt.Printf("%-8s p=%-4d N=%-2d %-7s m=%-8d ok (%d inter msgs, %v)\n",
						alg, spec.Procs, spec.Nodes, mappingName(spec), m, res.InterMessages, res.Elapsed.Round(time.Millisecond))
				}
			}
		}
	}
	if *overTCP {
		for _, spec := range specs[:6] { // keep the socket matrix modest
			for _, alg := range encag.PaperAlgorithms() {
				cases++
				res, err := encag.RunOverTCP(spec, alg, 64)
				status := "ok"
				switch {
				case err != nil:
					status = "FAIL: " + err.Error()
				case !res.SecurityOK:
					status = "INSECURE (audit)"
				case !res.WireClean:
					status = "INSECURE (plaintext on the wire)"
				}
				if status != "ok" {
					failures++
					fmt.Printf("tcp %-8s p=%-4d N=%-2d %s\n", alg, spec.Procs, spec.Nodes, status)
				} else if *verbose {
					fmt.Printf("tcp %-8s p=%-4d N=%-2d ok (%d wire bytes, all ciphertext)\n",
						alg, spec.Procs, spec.Nodes, res.WireBytes)
				}
			}
		}
	}

	if *faults {
		c, f := chaosSweep(*faultSeeds, *verbose)
		cases += c
		failures += f
	}

	fmt.Printf("\n%d cases, %d failures in %v\n", cases, failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}

// chaosSweep exercises every paper algorithm under deterministic fault
// plans on both the TCP and the channel transport, enforcing the
// fault-tolerance contract. It returns (cases, failures).
func chaosSweep(seeds int, verbose bool) (int, int) {
	specs := []encag.Spec{
		{Procs: 4, Nodes: 2, RecvTimeout: 2 * time.Second},
		{Procs: 8, Nodes: 4, RecvTimeout: 2 * time.Second},
	}
	cases, failures := 0, 0
	report := func(kind string, alg encag.Alg, spec encag.Spec, seed int64, status string) {
		if status != "ok" {
			failures++
			fmt.Printf("chaos %-10s %-8s p=%-4d N=%-2d seed=%-3d %s\n",
				kind, alg, spec.Procs, spec.Nodes, seed, status)
		} else if verbose {
			fmt.Printf("chaos %-10s %-8s p=%-4d N=%-2d seed=%-3d ok\n",
				kind, alg, spec.Procs, spec.Nodes, seed)
		}
	}
	for _, spec := range specs {
		for _, alg := range encag.PaperAlgorithms() {
			for seed := int64(1); seed <= int64(seeds); seed++ {
				// Transient plans are recoverable by definition: the TCP
				// transport must absorb every one and finish byte-exact.
				cases++
				tspec := spec
				tspec.RecvTimeout = 10 * time.Second // stalls slow frames down legitimately
				plan := encag.TransientFaultPlan(seed, spec.Procs, 6)
				_, err := encag.RunTCPFaulty(tspec, alg, 2048, plan)
				status := "ok"
				if err != nil {
					status = fmt.Sprintf("FAIL (transient plan must recover): %v [%v]", err, plan)
				}
				report("transient", alg, spec, seed, status)

				// Random plans include corruption: verified completion or a
				// single structured RankError are the only legal outcomes.
				cases++
				plan = encag.RandomFaultPlan(seed, spec.Procs, 6)
				_, err = encag.RunTCPFaulty(spec, alg, 2048, plan)
				report("random-tcp", alg, spec, seed, chaosStatus(err, plan))

				cases++
				plan = encag.RandomFaultPlan(seed+1000, spec.Procs, 4)
				_, err = encag.RunFaulty(spec, alg, 2048, plan)
				report("random-chan", alg, spec, seed, chaosStatus(err, plan))
			}
		}
	}
	return cases, failures
}

// chaosStatus classifies a chaos-run outcome: success and structured
// RankErrors are legal, anything else is a contract violation.
func chaosStatus(err error, plan *encag.FaultPlan) string {
	if err == nil {
		return "ok"
	}
	var re *encag.RankError
	if errors.As(err, &re) {
		return "ok" // failed closed with a structured root cause
	}
	return fmt.Sprintf("FAIL (unstructured error): %v [%v]", err, plan)
}

func mappingName(s encag.Spec) string {
	if s.Mapping == "" {
		return "block"
	}
	return s.Mapping
}

func splitComma(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
