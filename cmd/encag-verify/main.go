// Command encag-verify runs the full correctness and security sweep on
// the real execution engine: every encrypted algorithm, across a matrix
// of process counts, node counts, mappings and message sizes, with real
// AES-GCM over real payloads. It checks that
//
//   - every rank ends with every rank's plaintext block, byte-exact;
//   - no plaintext ever crosses a node boundary (transport audit);
//   - no GCM nonce is ever reused.
//
// Exit status 0 means all checks passed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"encag"
)

func main() {
	sizeList := flag.String("sizes", "1,17,256,4096", "comma-separated message sizes in bytes")
	verbose := flag.Bool("v", false, "print every case")
	overTCP := flag.Bool("tcp", false, "also run each algorithm over loopback TCP with wire sniffing")
	cryptoWorkers := flag.Int("crypto-workers", 0, "AES-GCM worker pool size (0 = shared GOMAXPROCS pool)")
	segSize := flag.Int64("segment-size", 0, "AES-GCM segmentation split size in bytes (0 = 64 KiB default); small values force multi-segment seals")
	flag.Parse()

	var sizes []int64
	for _, s := range splitComma(*sizeList) {
		var v int64
		if _, err := fmt.Sscan(s, &v); err != nil || v < 0 {
			fmt.Fprintf(os.Stderr, "bad size %q\n", s)
			os.Exit(2)
		}
		sizes = append(sizes, v)
	}

	specs := []encag.Spec{
		{Procs: 4, Nodes: 2},
		{Procs: 8, Nodes: 2},
		{Procs: 8, Nodes: 4, Mapping: "cyclic"},
		{Procs: 8, Nodes: 8},
		{Procs: 12, Nodes: 3},
		{Procs: 12, Nodes: 3, Mapping: "cyclic"},
		{Procs: 16, Nodes: 4},
		{Procs: 16, Nodes: 4, Mapping: "cyclic"},
		{Procs: 21, Nodes: 7},
		{Procs: 32, Nodes: 8},
		{Procs: 12, Nodes: 4, Mapping: "custom",
			Custom: []int{2, 0, 3, 1, 1, 3, 0, 2, 3, 2, 1, 0}},
	}

	for i := range specs {
		specs[i].CryptoWorkers = *cryptoWorkers
		specs[i].SegmentSize = *segSize
	}

	start := time.Now()
	cases, failures := 0, 0
	for _, spec := range specs {
		for _, alg := range encag.PaperAlgorithms() {
			for _, m := range sizes {
				cases++
				res, err := encag.Run(spec, alg, m)
				status := "ok"
				switch {
				case err != nil:
					status = "FAIL: " + err.Error()
				case !res.SecurityOK:
					status = fmt.Sprintf("INSECURE: %v", res.Violations)
				}
				if status != "ok" {
					failures++
					fmt.Printf("%-8s p=%-4d N=%-2d %-7s m=%-8d %s\n",
						alg, spec.Procs, spec.Nodes, mappingName(spec), m, status)
				} else if *verbose {
					fmt.Printf("%-8s p=%-4d N=%-2d %-7s m=%-8d ok (%d inter msgs, %v)\n",
						alg, spec.Procs, spec.Nodes, mappingName(spec), m, res.InterMessages, res.Elapsed.Round(time.Millisecond))
				}
			}
		}
	}
	if *overTCP {
		for _, spec := range specs[:6] { // keep the socket matrix modest
			for _, alg := range encag.PaperAlgorithms() {
				cases++
				res, err := encag.RunOverTCP(spec, alg, 64)
				status := "ok"
				switch {
				case err != nil:
					status = "FAIL: " + err.Error()
				case !res.SecurityOK:
					status = "INSECURE (audit)"
				case !res.WireClean:
					status = "INSECURE (plaintext on the wire)"
				}
				if status != "ok" {
					failures++
					fmt.Printf("tcp %-8s p=%-4d N=%-2d %s\n", alg, spec.Procs, spec.Nodes, status)
				} else if *verbose {
					fmt.Printf("tcp %-8s p=%-4d N=%-2d ok (%d wire bytes, all ciphertext)\n",
						alg, spec.Procs, spec.Nodes, res.WireBytes)
				}
			}
		}
	}

	fmt.Printf("\n%d cases, %d failures in %v\n", cases, failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}

func mappingName(s encag.Spec) string {
	if s.Mapping == "" {
		return "block"
	}
	return s.Mapping
}

func splitComma(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
