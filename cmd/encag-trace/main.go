// Command encag-trace renders an activity timeline of one simulated
// encrypted all-gather: an ASCII Gantt chart (one row per rank) plus the
// time breakdown of the critical rank. It makes visible *why* an
// algorithm wins — e.g. Naive's serial decryption tail versus HS2's
// parallel joint decryption.
//
// Example:
//
//	encag-trace -alg naive -p 16 -nodes 4 -size 64KB
//	encag-trace -alg hs2   -p 16 -nodes 4 -size 64KB
package main

import (
	"flag"
	"fmt"
	"os"

	"encag/internal/bench"
	"encag/internal/cluster"
	"encag/internal/cost"
	"encag/internal/encrypted"
	"encag/internal/trace"
)

func main() {
	algName := flag.String("alg", "hs2", "algorithm name (see encag-explore)")
	p := flag.Int("p", 16, "number of processes")
	nodes := flag.Int("nodes", 4, "number of nodes")
	mapping := flag.String("mapping", "block", "block or cyclic")
	sizeStr := flag.String("size", "64KB", "message size")
	profName := flag.String("profile", "noleland", "machine profile")
	width := flag.Int("width", 100, "gantt width in characters")
	flag.Parse()

	size, err := bench.ParseSize(*sizeStr)
	if err != nil {
		fatal(err)
	}
	prof, err := cost.ByName(*profName)
	if err != nil {
		fatal(err)
	}
	alg, err := encrypted.Get(*algName)
	if err != nil {
		fatal(err)
	}
	spec := cluster.Spec{P: *p, N: *nodes}
	if *mapping == "cyclic" {
		spec.Mapping = cluster.CyclicMapping
	}
	if err := spec.Validate(); err != nil {
		fatal(err)
	}

	col := &trace.Collector{}
	res, err := cluster.RunSimTraced(spec, prof, size, alg, col)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on p=%d nodes=%d %s, %s blocks: latency %v\n\n",
		*algName, *p, *nodes, *mapping, bench.SizeName(size), res.LatencyD)
	if err := col.Gantt(os.Stdout, spec.P, *width); err != nil {
		fatal(err)
	}
	fmt.Println()
	if err := col.WriteBreakdown(os.Stdout, spec.P); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
