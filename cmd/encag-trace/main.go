// Command encag-trace renders an activity timeline of one encrypted
// all-gather on any of the three engines: the discrete-event simulator
// (predicted, virtual time), the real in-memory engine or the loopback
// TCP engine (both measured, wall-clock time). It makes visible *why*
// an algorithm wins — e.g. Naive's serial decryption tail versus HS2's
// parallel joint decryption — and lets the model's predicted timeline
// be laid next to a real run's measured one.
//
// Formats: "text" is the ASCII Gantt chart plus the critical rank's
// breakdown; "chrome" is Chrome trace_event JSON, loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing with one track per
// rank; "jsonl" is a one-line structured run summary (spec, algorithm,
// the paper's six critical-path metrics, per-phase totals, wire
// capture).
//
// Examples:
//
//	encag-trace -alg naive -p 16 -nodes 4 -size 64KB
//	encag-trace -engine tcp -alg hs2 -p 8 -nodes 2 -format chrome -o trace.json
//	encag-trace -engine real -alg c-rd -p 16 -nodes 4 -format jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"encag"
	"encag/internal/bench"
	"encag/internal/cluster"
	"encag/internal/obs"
	"encag/internal/trace"
)

func main() {
	algName := flag.String("alg", "hs2", "algorithm name (see encag-explore)")
	p := flag.Int("p", 16, "number of processes")
	nodes := flag.Int("nodes", 4, "number of nodes")
	mapping := flag.String("mapping", "block", "process mapping: block or cyclic")
	sizeStr := flag.String("size", "64KB", "message size")
	profName := flag.String("profile", "noleland", "machine profile (sim engine only)")
	width := flag.Int("width", 100, "gantt width in characters (text format)")
	engine := flag.String("engine", "sim", "execution engine: sim, real or tcp")
	format := flag.String("format", "text", "output format: text, chrome or jsonl")
	outPath := flag.String("o", "", "write output to this file instead of stdout")
	flag.Parse()

	size, err := bench.ParseSize(*sizeStr)
	if err != nil {
		fatal(err)
	}
	alg, err := encag.ParseAlg(*algName)
	if err != nil {
		fatal(err)
	}
	switch *format {
	case "text", "chrome", "jsonl":
	default:
		fatal(fmt.Errorf("unknown format %q (want text, chrome or jsonl)", *format))
	}
	// Spec construction rejects unknown mappings instead of silently
	// falling back to block.
	spec := encag.Spec{Procs: *p, Nodes: *nodes, Mapping: *mapping}

	var (
		tr      *encag.Trace
		summary obs.RunSummary
		header  string
	)
	switch *engine {
	case "sim":
		prof, err := encag.ProfileByName(*profName)
		if err != nil {
			fatal(err)
		}
		res, t, err := encag.SimulateTraced(spec, prof, alg, size)
		if err != nil {
			fatal(err)
		}
		tr = t
		summary = obs.Summarize("sim", string(alg), clusterSpec(spec), size,
			res.Latency.Seconds(), res.Metrics, tr.Events).
			WithSelected(string(res.Algorithm))
		header = fmt.Sprintf("%s on p=%d nodes=%d %s, %s blocks [sim/%s]: predicted latency %v",
			alg, *p, *nodes, *mapping, bench.SizeName(size), *profName, res.Latency)
	case "real":
		res, t, err := encag.RunTraced(spec, alg, size)
		if err != nil {
			fatal(err)
		}
		tr = t
		summary = obs.Summarize("real", string(alg), clusterSpec(spec), size,
			res.Elapsed.Seconds(), res.Metrics, tr.Events).
			WithSecurity(res.SecurityOK).
			WithSelected(string(res.Algorithm)).
			WithOp(res.OpID, 1)
		header = fmt.Sprintf("%s on p=%d nodes=%d %s, %s blocks [real]: elapsed %v, security ok=%v",
			alg, *p, *nodes, *mapping, bench.SizeName(size), res.Elapsed, res.SecurityOK)
	case "tcp":
		res, t, err := encag.RunOverTCPTraced(spec, alg, size)
		if err != nil {
			fatal(err)
		}
		tr = t
		summary = obs.Summarize("tcp", string(alg), clusterSpec(spec), size,
			res.Elapsed.Seconds(), res.Metrics, tr.Events).
			WithSecurity(res.SecurityOK).
			WithWire(res.WireBytes, res.WireTruncated).
			WithSelected(string(res.Algorithm)).
			WithOp(res.OpID, 1)
		header = fmt.Sprintf("%s on p=%d nodes=%d %s, %s blocks [tcp]: elapsed %v, security ok=%v, wire %d bytes (truncated=%v)",
			alg, *p, *nodes, *mapping, bench.SizeName(size), res.Elapsed, res.SecurityOK,
			res.WireBytes, res.WireTruncated)
	default:
		fatal(fmt.Errorf("unknown engine %q (want sim, real or tcp)", *engine))
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		out = f
	}

	switch *format {
	case "text":
		fmt.Fprintf(out, "%s\n\n", header)
		col := &trace.Collector{Events: tr.Events}
		if err := col.Gantt(out, *p, *width); err != nil {
			fatal(err)
		}
		fmt.Fprintln(out)
		if err := col.WriteBreakdown(out, *p); err != nil {
			fatal(err)
		}
	case "chrome":
		if err := obs.WriteChromeTrace(out, tr.Events); err != nil {
			fatal(err)
		}
	case "jsonl":
		if err := summary.WriteJSONL(out); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q (want text, chrome or jsonl)", *format))
	}
}

// clusterSpec mirrors the facade spec for the summary record; the
// mapping string was already validated by the run.
func clusterSpec(s encag.Spec) cluster.Spec {
	cs := cluster.Spec{P: s.Procs, N: s.Nodes}
	if s.Mapping == "cyclic" {
		cs.Mapping = cluster.CyclicMapping
	}
	return cs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
