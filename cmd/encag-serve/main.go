// Command encag-serve hosts many tenant Sessions in one process over a
// shared crypto pool — the multi-tenant collective service. Tenants are
// pre-registered t0..t{N-1} (more auto-register on first use) and admit
// lazily; the HTTP surface drives and observes them:
//
//	encag-serve -tenants 16 -engine chan -addr 127.0.0.1:9191
//	curl 'http://127.0.0.1:9191/v1/step?tenant=t3&op=allgather&size=16384'
//	curl http://127.0.0.1:9191/v1/tenants     # per-tenant rollup JSON
//	curl http://127.0.0.1:9191/metrics        # merged, tenant-labelled
//	go tool pprof http://127.0.0.1:9191/debug/pprof/profile?seconds=5
//
// Admission control (-maxsteps/-maxqueue/-queue-timeout) answers
// saturation with HTTP 429 and a structured reason instead of queueing
// unboundedly; idle tenants are reaped after -idle-ttl and readmitted
// transparently on their next step; -rekey-every rotates resident
// tenants' AES keys in the background. encag-load is the matching
// client.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"encag"
	"encag/internal/serve"
)

func main() {
	tenants := flag.Int("tenants", 8, "tenant sessions to pre-register (t0..tN-1)")
	p := flag.Int("p", 4, "ranks per tenant session")
	nodes := flag.Int("nodes", 2, "nodes per tenant session")
	engineStr := flag.String("engine", "chan", "execution engine per tenant: chan or tcp")
	capacity := flag.Int("capacity", 0, "max resident tenant sessions (0 = unlimited; beyond it the LRU idle tenant is evicted)")
	idleTTL := flag.Duration("idle-ttl", 0, "reap tenant sessions idle this long (0 = never)")
	rekeyEvery := flag.Duration("rekey-every", 0, "rotate resident tenants' AES keys this often when idle (0 = never)")
	sweepEvery := flag.Duration("sweep-every", 0, "janitor period (0 = default 250ms)")
	maxSteps := flag.Int("maxsteps", 0, "concurrent collectives across all tenants (0 = derive from pool size)")
	maxQueue := flag.Int("maxqueue", 0, "callers allowed to wait for a step slot (0 = 4x maxsteps)")
	queueTimeout := flag.Duration("queue-timeout", 0, "max wait for a step slot (0 = 2s)")
	cryptoWorkers := flag.Int("crypto-workers", 0, "shared crypto pool size (0 = GOMAXPROCS)")
	pipeline := flag.Bool("pipeline", false, "stream sealed segments onto the wire inside each collective")
	warm := flag.Bool("warm", false, "open every registered tenant's session at startup")
	addr := flag.String("addr", "", "HTTP listen address (empty = ephemeral loopback port)")
	duration := flag.Duration("duration", 0, "how long to serve (0 = until SIGINT)")
	flag.Parse()

	engine := encag.Engine(*engineStr)
	if engine != encag.EngineChan && engine != encag.EngineTCP {
		fatal(fmt.Errorf("unknown -engine %q (want chan or tcp)", *engineStr))
	}
	opts := []encag.Option{encag.WithEngine(engine)}
	if *pipeline {
		opts = append(opts, encag.WithPipelining(true))
	}
	cfg := serve.Config{
		Spec:           encag.Spec{Procs: *p, Nodes: *nodes},
		SessionOptions: opts,
		Capacity:       *capacity,
		IdleTTL:        *idleTTL,
		RekeyEvery:     *rekeyEvery,
		SweepEvery:     *sweepEvery,
		MaxSteps:       *maxSteps,
		MaxQueue:       *maxQueue,
		QueueTimeout:   *queueTimeout,
	}
	if *cryptoWorkers > 0 {
		cfg.Pool = encag.NewCryptoPool(*cryptoWorkers)
		defer cfg.Pool.Close()
	}
	m, err := serve.Open(cfg)
	if err != nil {
		fatal(err)
	}
	defer m.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	for i := 0; i < *tenants; i++ {
		id := fmt.Sprintf("t%d", i)
		if err := m.Register(id, cfg.Spec); err != nil {
			fatal(err)
		}
		if *warm {
			if err := m.Warm(ctx, id); err != nil {
				fatal(fmt.Errorf("warm %s: %w", id, err))
			}
		}
	}

	srv, err := serve.NewServer(m, *addr)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	fmt.Printf("encag-serve: %d tenants (%s, p=%d nodes=%d), pool=%d workers, resident=%d\n",
		*tenants, engine, *p, *nodes, m.Pool().Size(), m.Resident())
	fmt.Printf("serving at http://%s (/v1/step, /v1/tenants, /metrics, /debug/vars, /debug/pprof/)\n", srv.Addr())

	<-ctx.Done()

	snap := m.Snapshot()
	fmt.Printf("\nshutdown: %d tenants known, %d resident, %d steps admitted\n",
		snap.Known, snap.Resident, snap.Admitted)
	fmt.Printf("rejections: %v\nreaps: %v  rekeys=%d\n", snap.Rejected, snap.Reaps, snap.Rekeys)
	fmt.Printf("pool: size=%d dispatched=%d saturated=%d\n",
		snap.Pool.Size, snap.Pool.Dispatched, snap.Pool.Saturated)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
