package encag

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// Live metrics under concurrent in-flight collectives: counters must be
// monotone and consistent, the in-flight gauges must return to zero
// once the window drains, and the latency quantiles must be sane.
func TestSessionMetricsConcurrent(t *testing.T) {
	for _, engine := range []Engine{EngineChan, EngineTCP} {
		t.Run(string(engine), func(t *testing.T) {
			spec := Spec{Procs: 8, Nodes: 2}
			s, err := OpenSession(context.Background(), spec,
				WithEngine(engine), WithMaxInFlight(3))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			const ops = 12
			var wg sync.WaitGroup
			for i := 0; i < ops; i++ {
				h, err := s.Start(context.Background(), "hs2", 2048)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := h.Wait(); err != nil {
						t.Error(err)
					}
				}()
			}
			if err := s.WaitAll(context.Background()); err != nil {
				t.Fatal(err)
			}
			wg.Wait()

			snap := s.Snapshot()
			if snap.OpsStarted != ops || snap.OpsCompleted != ops {
				t.Errorf("started=%d completed=%d, want %d each", snap.OpsStarted, snap.OpsCompleted, ops)
			}
			if snap.OpsFailed != 0 || snap.OpsCancelled != 0 || snap.Poisonings != 0 {
				t.Errorf("failed=%d cancelled=%d poisonings=%d, want 0",
					snap.OpsFailed, snap.OpsCancelled, snap.Poisonings)
			}
			if snap.InFlight != 0 || snap.WindowInFlight != 0 {
				t.Errorf("inflight=%d window inflight=%d after WaitAll, want 0",
					snap.InFlight, snap.WindowInFlight)
			}
			if snap.Window != 3 {
				t.Errorf("window=%d, want 3", snap.Window)
			}
			// 12 back-to-back Starts through a window of 3 must have hit
			// backpressure at least once.
			if snap.WindowWaits <= 0 {
				t.Errorf("window waits=%d, want > 0", snap.WindowWaits)
			}
			lat := snap.OpLatency
			if lat.Count != ops {
				t.Errorf("latency count=%d, want %d", lat.Count, ops)
			}
			if lat.P50 <= 0 || lat.P50 > lat.P95 || lat.P95 > lat.P99 || lat.P99 > lat.Max {
				t.Errorf("latency quantiles not monotone: %+v", lat)
			}
			// Every collective moves frames and seals segments; totals must
			// be positive and recv can never exceed sent (frames can be
			// lost, never invented).
			if snap.FramesSent <= 0 || snap.BytesSent <= 0 {
				t.Errorf("transport sent counters empty: frames=%d bytes=%d", snap.FramesSent, snap.BytesSent)
			}
			if snap.FramesRecv > snap.FramesSent {
				t.Errorf("recv %d frames > sent %d", snap.FramesRecv, snap.FramesSent)
			}
			if snap.SegmentsSealed <= 0 || snap.SegmentsOpened <= 0 {
				t.Errorf("seal counters empty: sealed=%d opened=%d", snap.SegmentsSealed, snap.SegmentsOpened)
			}
			if engine == EngineTCP && snap.WireBytes <= 0 {
				t.Error("tcp session reports no wire bytes")
			}

			// A later batch only grows the monotone counters, and the
			// RunResult reports the op id the registry counted.
			res, err := s.Run(context.Background(), "hs2", 2048)
			if err != nil {
				t.Fatal(err)
			}
			if res.OpID != ops+1 {
				t.Errorf("op id = %d, want %d", res.OpID, ops+1)
			}
			snap2 := s.Snapshot()
			if snap2.OpsCompleted != snap.OpsCompleted+1 || snap2.FramesSent <= snap.FramesSent {
				t.Errorf("counters not monotone across batches: ops %d -> %d, frames %d -> %d",
					snap.OpsCompleted, snap2.OpsCompleted, snap.FramesSent, snap2.FramesSent)
			}
		})
	}
}

// Rekey must keep the sealed/opened totals monotone (the retiring
// sealer's counts fold into the session bases) and count the rotation.
func TestSessionMetricsRekey(t *testing.T) {
	s, err := OpenSession(context.Background(), Spec{Procs: 4, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(context.Background(), "hs2", 1024); err != nil {
		t.Fatal(err)
	}
	before := s.Snapshot()
	if before.SegmentsSealed <= 0 {
		t.Fatal("no sealed segments before rekey")
	}
	if err := s.Rekey(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), "hs2", 1024); err != nil {
		t.Fatal(err)
	}
	after := s.Snapshot()
	if after.Rekeys != 1 {
		t.Errorf("rekeys=%d, want 1", after.Rekeys)
	}
	if after.SegmentsSealed <= before.SegmentsSealed {
		t.Errorf("sealed total not monotone across rekey: %d -> %d",
			before.SegmentsSealed, after.SegmentsSealed)
	}
}

// Injected faults show up in the per-kind counters without failing the
// collective (a stall is recoverable), and the kind label matches the
// fault package's naming.
func TestSessionMetricsFaults(t *testing.T) {
	s, err := OpenSession(context.Background(), Spec{Procs: 4, Nodes: 2}, WithEngine(EngineTCP))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	plan := &FaultPlan{Rules: []FaultRule{
		{Src: -1, Dst: -1, Frame: -1, Kind: FaultStall, Delay: time.Millisecond, Times: 3},
	}}
	if _, err := s.Run(context.Background(), "hs2", 1024, WithFaultPlan(plan)); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.FaultsInjected["stall"] < 1 {
		t.Errorf("stall faults=%d, want >= 1 (all: %v)", snap.FaultsInjected["stall"], snap.FaultsInjected)
	}
	// Every kind label is present in the snapshot even when it never
	// fired — the families register eagerly at zero.
	for _, kind := range []string{"drop", "corrupt", "stall", "stall-read", "partial-write"} {
		if _, ok := snap.FaultsInjected[kind]; !ok {
			t.Errorf("fault kind %q missing from snapshot: %v", kind, snap.FaultsInjected)
		}
	}
	if snap.OpsFailed != 0 {
		t.Errorf("stall should not fail the op: failed=%d", snap.OpsFailed)
	}
}

// A cancelled in-flight operation lands in the cancelled counter, not
// the failed one, and does not poison the session.
func TestSessionMetricsCancel(t *testing.T) {
	s, err := OpenSession(context.Background(), Spec{Procs: 4, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Per-frame stalls keep the op in flight long enough to cancel it
	// deterministically mid-run.
	plan := &FaultPlan{Rules: []FaultRule{
		{Src: -1, Dst: -1, Frame: -1, Kind: FaultStall, Delay: 20 * time.Millisecond, Times: -1},
	}}
	ctx, cancel := context.WithCancel(context.Background())
	h, err := s.Start(ctx, "hs2", 1<<16, WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := h.Err(); err == nil {
		t.Fatal("cancelled op completed")
	}
	snap := s.Snapshot()
	if snap.OpsCancelled != 1 || snap.OpsFailed != 0 {
		t.Errorf("cancelled=%d failed=%d, want 1/0", snap.OpsCancelled, snap.OpsFailed)
	}
	if snap.Poisonings != 0 {
		t.Errorf("poisonings=%d after op-scoped cancel, want 0", snap.Poisonings)
	}
	if _, err := s.Run(context.Background(), "hs2", 256); err != nil {
		t.Fatalf("session unusable after cancel: %v", err)
	}
}

// The acceptance scenario: a live TCP session with at least two
// collectives in flight must serve valid Prometheus text over HTTP
// containing the session, scheduler, seal-pool, transport and
// fault/recovery metric families.
func TestDebugServerLiveTCP(t *testing.T) {
	spec := Spec{Procs: 4, Nodes: 2}
	s, err := OpenSession(context.Background(), spec,
		WithEngine(EngineTCP), WithMaxInFlight(4), WithDebugServer(""))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := s.DebugAddr()
	if addr == "" {
		t.Fatal("no debug address")
	}

	// Delay every read on every pair so the collectives stay in flight
	// across the scrape window.
	plan := &FaultPlan{Rules: []FaultRule{
		{Src: -1, Dst: -1, Kind: FaultStallRead, Delay: 15 * time.Millisecond, Times: -1},
	}}
	var handles []*Handle
	for i := 0; i < 3; i++ {
		h, err := s.Start(context.Background(), "hs2", 4096, WithFaultPlan(plan))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.InFlight() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("never reached 2 in-flight collectives (at %d)", s.InFlight())
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := validatePrometheus(t, string(body))
	for _, family := range []string{
		"encag_session_ops_started_total",
		"encag_session_op_latency_ns_count",
		"encag_session_wire_bytes_total",
		"encag_sched_inflight",
		"encag_sched_queue_depth",
		"encag_sched_window_inflight",
		"encag_sched_window_waits_total",
		"encag_seal_pool_size",
		"encag_seal_pool_busy",
		"encag_seal_segments_sealed_total",
		"encag_transport_frames_sent_total",
		"encag_transport_bytes_recv_total",
		"encag_fault_injected_total",
		"encag_fault_reconnects_total",
		"encag_fault_recv_timeouts_total",
	} {
		if _, ok := samples[family]; !ok {
			t.Errorf("exposition missing family %s", family)
		}
	}
	if v := samples["encag_sched_inflight"]; v < 2 {
		t.Errorf("scraped in-flight gauge = %v with >= 2 ops live", v)
	}
	if v := samples["encag_session_ops_started_total"]; v < 3 {
		t.Errorf("scraped ops started = %v, want >= 3", v)
	}

	// The pprof index and expvar endpoints answer too.
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		r, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, r.StatusCode)
		}
	}

	for _, h := range handles {
		if _, err := h.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// After Close the server must stop answering.
	s.Close()
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("debug server still serving after Close")
	}
}

// WritePrometheus on the session's registry is valid without the HTTP
// server, and the one-op counters read back exactly.
func TestMetricsWritePrometheusDirect(t *testing.T) {
	s, err := OpenSession(context.Background(), Spec{Procs: 4, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(context.Background(), "hs2", 512); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := s.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := validatePrometheus(t, b.String())
	if samples["encag_session_ops_completed_total"] != 1 {
		t.Errorf("ops completed = %v, want 1", samples["encag_session_ops_completed_total"])
	}
	if samples["encag_session_op_latency_ns_count"] != 1 {
		t.Errorf("latency count = %v, want 1", samples["encag_session_op_latency_ns_count"])
	}
}

// WithDebugServer is a session-level option.
func TestDebugServerOptionIsSessionLevel(t *testing.T) {
	s, err := OpenSession(context.Background(), Spec{Procs: 4, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(context.Background(), "hs2", 256, WithDebugServer("")); err == nil {
		t.Fatal("per-op WithDebugServer accepted")
	}
}

// validatePrometheus parses the text exposition line by line — every
// non-comment line must be "name[{labels}] value" with a numeric value —
// and returns the first sample value per bare metric name.
func validatePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	n := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n++
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
			name = name[:i]
		}
		if _, seen := samples[name]; !seen {
			samples[name] = val
		}
	}
	if n == 0 {
		t.Fatal("empty exposition")
	}
	return samples
}
